(* The portend command-line tool.

   portend run FILE        execute a Racelang program and print its output
   portend detect FILE     record an execution and report distinct races
   portend classify FILE   detect and classify every race (the full pipeline)
   portend profile FILE    classify with telemetry enabled and print the
                           per-phase summary (spans, counters, gauges)
   portend lint FILE       static diagnostics only: potential races, lock
                           misuse, loop-invariant spin loops (no execution)
   portend serve           long-running classification daemon (socket API)
   portend litmus          enumerate litmus programs and differential-test
                           the pipeline's mode matrix on each
   portend dump FILE       pretty-print the parsed program and its bytecode

   FILE contains Racelang concrete syntax (see the README for the grammar).
   Program inputs are supplied with repeated --input NAME=VALUE flags; the
   scheduler seed with --seed. *)

open Cmdliner
module V = Portend_vm
module Core = Portend_core
module D = Portend_detect
module Telemetry = Portend_telemetry
module Serve = Portend_serve

let load file =
  try Ok (Portend_lang.Parser.compile_file file) with
  | Portend_lang.Parser.Error e | Portend_lang.Lexer.Error e -> Error ("parse error: " ^ e)
  | Portend_lang.Compile.Error e -> Error ("compile error: " ^ e)
  | Sys_error e -> Error e

(* common flags *)
let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Scheduler seed for the recording.")

(* --input NAME=VALUE, validated by the shared parser (Core.Inputs): a bad
   pair ("x=abc", "x=1=2") is a clean usage error, never a backtrace, and
   binding the same name twice is rejected (the duplicate-key rule the
   serve protocol enforces too). *)
let input_conv =
  let parse s =
    match Core.Inputs.parse_pair s with Ok kv -> Ok kv | Error e -> Error (`Msg e)
  in
  let print fmt (k, v) = Format.fprintf fmt "%s=%d" k v in
  Arg.conv (parse, print)

let inputs_arg =
  let raw =
    Arg.(
      value & opt_all input_conv []
      & info [ "input"; "i" ] ~docv:"NAME=VALUE"
          ~doc:
            "Concrete integer value for a program input.  Repeatable; each NAME may be bound \
             at most once.")
  in
  Term.term_result' ~usage:true Term.(const Core.Inputs.check_duplicates $ raw)

let jobs_arg =
  Arg.(
    value
    & opt int Core.Config.default.Core.Config.jobs
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for race classification (default: the recommended domain count). \
           Verdicts are identical for every value.")

let prefilter_arg =
  Arg.(
    value & flag
    & info [ "static-prefilter" ]
        ~doc:
          "Restrict dynamic race detection to the sites the static analysis reports as \
           candidate races. Race reports are identical either way (the candidates \
           over-approximate the reportable races); only the instrumented-site count shrinks.")

let no_reduction_arg =
  Arg.(
    value & flag
    & info [ "no-reduction" ]
        ~doc:
          "Disable the state-space reductions of the multi-path/multi-schedule stage (scored \
           frontier, state dedup, interleaving-equivalence pruning, incremental path solving). \
           Verdicts and race reports are identical either way; only the work done changes.")

let cache_arg =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Persist verdicts, solver memos and static summaries in the content-addressed on-disk \
           store under $(b,--cache-dir), and reuse entries from earlier runs. Cached and \
           uncached runs produce bit-identical output; a corrupt or stale entry is a miss, \
           never an error.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Disable the persistent cache (overrides $(b,--cache)).")

let cache_dir_arg =
  Arg.(
    value
    & opt string Core.Config.default.Core.Config.cache_dir
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Root directory of the persistent cache (default: _portend_cache).")

let apply_cache config cache no_cache cache_dir =
  { config with Core.Config.cache = cache && not no_cache; cache_dir }

let print_cache_stats () =
  List.iter
    (fun (tier, s) ->
      Printf.printf "cache[%s]: %d hit(s), %d miss(es), %d write(s), %d eviction(s)\n"
        (Portend_cache.Store.tier_name tier)
        s.Portend_cache.Store.hits s.Portend_cache.Store.misses s.Portend_cache.Store.writes
        s.Portend_cache.Store.evictions)
    (Portend_cache.Store.stats ())

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline e;
    exit 1

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record telemetry during the analysis and write a Chrome-trace JSON (loadable in \
           Perfetto / chrome://tracing) to $(docv).")

let write_chrome_trace out snap =
  Out_channel.with_open_text out (fun oc -> output_string oc (Telemetry.to_chrome_json snap));
  Printf.printf "wrote Chrome trace to %s\n" out

(* Run [f] with telemetry enabled when [--trace FILE] was given, then export
   the Chrome trace.  Telemetry stays off otherwise (zero overhead). *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some out ->
    Telemetry.set_enabled true;
    Telemetry.reset ();
    Fun.protect
      ~finally:(fun () -> Telemetry.set_enabled false)
      (fun () ->
        let r = f () in
        write_chrome_trace out (Telemetry.snapshot ());
        r)

(* --- run --- *)

let run_cmd =
  let run file seed inputs =
    let prog = or_die (load file) in
    let model = Portend_util.Maps.Smap.of_list inputs in
    let st = V.State.init ~input_mode:(V.State.Concrete model) prog in
    let r = V.Run.run ~sched:(V.Sched.random ~seed) st in
    Fmt.pr "%a@." V.State.pp_outputs r.V.Run.final;
    Printf.printf "execution %s after %d instructions\n"
      (V.Run.stop_to_string r.V.Run.stop)
      r.V.Run.final.V.State.steps;
    match r.V.Run.stop with V.Run.Halted -> 0 | _ -> 2
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a Racelang program once and print its output.")
    Term.(const run $ file_arg $ seed_arg $ inputs_arg)

(* --- detect --- *)

let detect_cmd =
  let detect file seed inputs prefilter =
    let prog = or_die (load file) in
    let record, _ = Core.Pipeline.record ~seed ~inputs prog in
    let suppress = Portend_lang.Static.spin_read_sites prog in
    let restrict =
      if prefilter then Some (Portend_analysis.Static_report.analyze prog) else None
    in
    let races = D.Hb.detect_clustered ~suppress ?restrict record.V.Run.events in
    Printf.printf "recording %s; %d distinct race(s)\n"
      (V.Run.stop_to_string record.V.Run.stop)
      (List.length races);
    List.iter
      (fun (race, n) -> Fmt.pr "%a@.  (%d dynamic instance(s))@." D.Report.pp_race race n)
      races;
    if races = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:"Record an execution and report the distinct data races it contains.")
    Term.(const detect $ file_arg $ seed_arg $ inputs_arg $ prefilter_arg)

(* --- classify --- *)

let classify_cmd =
  let mp_arg =
    Arg.(value & opt int Core.Config.default.Core.Config.mp
         & info [ "mp" ] ~docv:"N" ~doc:"Primary paths to explore (Mp).")
  in
  let ma_arg =
    Arg.(value & opt int Core.Config.default.Core.Config.ma
         & info [ "ma" ] ~docv:"N" ~doc:"Alternate schedules per primary (Ma).")
  in
  let sym_arg =
    Arg.(value & opt int Core.Config.default.Core.Config.max_symbolic_inputs
         & info [ "symbolic-inputs" ] ~docv:"N" ~doc:"How many program inputs to treat symbolically.")
  in
  let classify file seed inputs mp ma sym jobs prefilter no_reduction cache no_cache cache_dir
      trace =
    let prog = or_die (load file) in
    let config =
      apply_cache
        { Core.Config.default with
          Core.Config.mp;
          ma;
          max_symbolic_inputs = sym;
          jobs;
          static_prefilter = prefilter;
          enable_reduction = not no_reduction
        }
        cache no_cache cache_dir
    in
    let a =
      with_trace trace (fun () ->
          Core.Pcache.with_solver_memos config (fun () ->
              Core.Pipeline.analyze ~config ~seed ~inputs prog))
    in
    Printf.printf "recording %s; %d distinct race(s)\n\n"
      (V.Run.stop_to_string a.Core.Pipeline.record.V.Run.stop)
      (List.length a.Core.Pipeline.races);
    List.iter
      (fun ra ->
        Fmt.pr "%a@.  verdict: %a — %s@." D.Report.pp_race ra.Core.Pipeline.race
          Core.Taxonomy.pp_verdict ra.Core.Pipeline.verdict
          ra.Core.Pipeline.verdict.Core.Taxonomy.detail;
        (match ra.Core.Pipeline.evidence with
        | Some e -> print_string (Core.Evidence.render e)
        | None -> ());
        print_newline ())
      a.Core.Pipeline.races;
    List.iter
      (fun (race, e) -> Fmt.pr "unclassified: %a (%s)@." D.Report.pp_race race e)
      a.Core.Pipeline.errors;
    let harmful =
      List.exists
        (fun ra ->
          ra.Core.Pipeline.verdict.Core.Taxonomy.category = Core.Taxonomy.Spec_violated)
        a.Core.Pipeline.races
    in
    if harmful then 1 else 0
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:
         "Detect every data race and classify it as specViol, outDiff, k-witness harmless or \
          single-ordering.")
    Term.(
      const classify $ file_arg $ seed_arg $ inputs_arg $ mp_arg $ ma_arg $ sym_arg $ jobs_arg
      $ prefilter_arg $ no_reduction_arg $ cache_arg $ no_cache_arg $ cache_dir_arg $ trace_arg)

(* --- lint --- *)

let lint_cmd =
  let lint file cache no_cache cache_dir =
    let prog = or_die (load file) in
    let store =
      if cache && not no_cache then Some (Portend_cache.Store.open_store cache_dir) else None
    in
    (* Same bracketing as suite: reset first so the stats lines cover
       exactly this lint run's summary-tier traffic. *)
    if store <> None then Portend_cache.Store.reset_stats ();
    let diags = Portend_analysis.Lint.run ?store prog in
    List.iter (fun d -> print_endline (Portend_analysis.Lint.to_string d)) diags;
    let errors =
      List.filter (fun d -> d.Portend_analysis.Lint.severity = Portend_analysis.Lint.Error) diags
    in
    Printf.printf "%d diagnostic(s): %d error(s), %d warning(s)\n" (List.length diags)
      (List.length errors)
      (List.length diags - List.length errors);
    if store <> None then print_cache_stats ();
    if diags = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a program without executing it: potential data races (may-happen-\
          in-parallel accesses with disjoint locksets), locks possibly held at return, possible \
          double acquires (self-deadlock), and spin loops whose condition no concurrent thread \
          can change.")
    Term.(const lint $ file_arg $ cache_arg $ no_cache_arg $ cache_dir_arg)

(* --- weakmem --- *)

let weakmem_cmd =
  let depth_arg =
    Arg.(value & opt int 2
         & info [ "depth" ] ~docv:"N" ~doc:"How many overwritten values a racy load may observe.")
  in
  let weakmem file depth =
    let prog = or_die (load file) in
    let sc = Core.Weakmem.explore ~depth:0 prog in
    let weak = Core.Weakmem.explore ~depth prog in
    Printf.printf "sequential consistency: %d executions, %d violation(s)\n"
      sc.Core.Weakmem.executions
      (List.length sc.Core.Weakmem.crashes);
    Printf.printf "adversarial memory:     %d executions, %d violation(s)%s\n"
      weak.Core.Weakmem.executions
      (List.length weak.Core.Weakmem.crashes)
      (if weak.Core.Weakmem.truncated then " (truncated)" else "");
    List.iter
      (fun (c, step) -> Fmt.pr "  at step %d: %a@." step V.Crash.pp c)
      weak.Core.Weakmem.crashes;
    if List.length weak.Core.Weakmem.crashes > List.length sc.Core.Weakmem.crashes then 1
    else 0
  in
  Cmd.v
    (Cmd.info "weakmem"
       ~doc:
         "Check whether the program has violations reachable only under a weaker memory \
          consistency model (adversarial memory).")
    Term.(const weakmem $ file_arg $ depth_arg)

(* --- suite --- *)

let suite_cmd =
  let extended_arg =
    Arg.(
      value & flag
      & info [ "extended" ]
          ~doc:
            "Also run the synchronization-heavy workloads beyond the paper's Table 1 (the \
             CondPC condvar producer/consumer and SemPC semaphore handoff models).  Without \
             this flag the suite is the paper's exact workload set.")
  in
  let suite jobs no_reduction extended cache no_cache cache_dir trace =
    let config =
      apply_cache
        { Core.Config.default with Core.Config.jobs; enable_reduction = not no_reduction }
        cache no_cache cache_dir
    in
    let workloads =
      if extended then Portend_workloads.Suite.extended else Portend_workloads.Suite.all
    in
    (* Explicit reset so the stats lines below cover exactly this suite run,
       cumulatively across all workloads (not just the last one). *)
    Portend_solver.Solver.reset_stats ();
    Portend_cache.Store.reset_stats ();
    with_trace trace (fun () ->
        Core.Pcache.with_solver_memos config (fun () ->
            List.iter
              (fun (w : Portend_workloads.Registry.workload) ->
                let prog = Portend_lang.Compile.compile w.Portend_workloads.Registry.w_prog in
                let a =
                  Core.Pipeline.analyze ~config ~seed:w.Portend_workloads.Registry.w_seed
                    ~inputs:w.Portend_workloads.Registry.w_inputs prog
                in
                Fmt.pr "%a@." Core.Pipeline.pp_summary a)
              workloads));
    let s = Portend_solver.Solver.stats () in
    Printf.printf
      "solver: %d queries, %d cache hits, %d misses, %d prefix-unsat (hit rate %.0f%%)\n"
      s.Portend_solver.Solver.queries s.Portend_solver.Solver.cache_hits
      s.Portend_solver.Solver.cache_misses s.Portend_solver.Solver.prefix_unsat
      (100. *. Portend_solver.Solver.hit_rate s);
    if config.Core.Config.cache then print_cache_stats ();
    0
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Classify every race in the paper's evaluation suite.")
    Term.(
      const suite $ jobs_arg $ no_reduction_arg $ extended_arg $ cache_arg $ no_cache_arg
      $ cache_dir_arg $ trace_arg)

(* --- profile --- *)

let profile_cmd =
  let no_times_arg =
    Arg.(
      value & flag
      & info [ "no-times" ]
          ~doc:
            "Elide every wall-clock column from the summary so the output is deterministic \
             (counts only).")
  in
  let profile file seed inputs jobs no_reduction cache no_cache cache_dir trace no_times =
    let prog = or_die (load file) in
    let config =
      apply_cache
        { Core.Config.default with Core.Config.jobs; enable_reduction = not no_reduction }
        cache no_cache cache_dir
    in
    let p =
      Core.Pcache.with_solver_memos config (fun () ->
          Core.Profile.run ~config ~seed ~inputs prog)
    in
    print_string (Core.Profile.render ~times:(not no_times) p);
    (match trace with
    | Some out -> write_chrome_trace out p.Core.Profile.snap
    | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the full classification pipeline with telemetry enabled and print the per-phase \
          summary: span durations, counters (VM steps, vector-clock operations, explored \
          states, solver queries, ...) and gauges.")
    Term.(
      const profile $ file_arg $ seed_arg $ inputs_arg $ jobs_arg $ no_reduction_arg $ cache_arg
      $ no_cache_arg $ cache_dir_arg $ trace_arg $ no_times_arg)

(* --- serve --- *)

let serve_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) (default: portend.sock in the current \
             directory, unless $(b,--port) is given).")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"N"
          ~doc:"Listen on TCP port $(docv) instead of a Unix socket (0 binds an ephemeral port).")
  in
  let host_arg =
    Arg.(
      value & opt string ""
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind with $(b,--port) (default: loopback).")
  in
  let queue_arg =
    Arg.(
      value
      & opt int Serve.Server.default_settings.Serve.Server.queue_depth
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Pending jobs accepted before the daemon answers $(i,busy) instead of queueing \
             (explicit backpressure).")
  in
  let idle_arg =
    Arg.(
      value
      & opt float Serve.Server.default_settings.Serve.Server.idle_timeout_s
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Disconnect clients idle this long with nothing queued (0 disables).")
  in
  let max_request_arg =
    Arg.(
      value
      & opt int Serve.Server.default_settings.Serve.Server.max_request_bytes
      & info [ "max-request" ] ~docv:"BYTES"
          ~doc:"Largest accepted request line; longer lines get an $(i,oversized) reply.")
  in
  let batch_arg =
    Arg.(
      value
      & opt int Serve.Server.default_settings.Serve.Server.batch
      & info [ "batch" ] ~docv:"N" ~doc:"Maximum jobs dispatched per round-robin round.")
  in
  let serve socket port host jobs queue idle max_request batch cache no_cache cache_dir trace =
    let config =
      apply_cache { Core.Config.default with Core.Config.jobs } cache no_cache cache_dir
    in
    let settings =
      { Serve.Server.config;
        max_request_bytes = max_request;
        queue_depth = queue;
        idle_timeout_s = idle;
        batch
      }
    in
    let address =
      match (socket, port) with
      | Some path, None -> Serve.Server.Unix_path path
      | None, Some p -> Serve.Server.Tcp (host, p)
      | Some _, Some _ -> or_die (Error "give --socket or --port, not both")
      | None, None -> Serve.Server.Unix_path "portend.sock"
    in
    (* SIGTERM/SIGINT write one byte to the control pipe: the loop stops
       accepting, finishes every queued job, flushes replies, snapshots the
       solver memos, and returns — the graceful drain path. *)
    let ctl_r, ctl_w = Unix.pipe () in
    List.iter
      (fun sg ->
        Sys.set_signal sg
          (Sys.Signal_handle
             (fun _ -> try ignore (Unix.write_substring ctl_w "q" 0 1) with Unix.Unix_error _ -> ())))
      [ Sys.sigterm; Sys.sigint ];
    (try
       with_trace trace (fun () ->
           Serve.Server.run ~settings
             ~on_ready:(fun bound ->
               Printf.printf "portend serve: listening on %s (jobs=%d, cache=%b)\n%!"
                 (Serve.Server.address_to_string bound)
                 config.Core.Config.jobs config.Core.Config.cache)
             ~control:ctl_r address)
     with Unix.Unix_error (err, fn, arg) ->
       or_die (Error (Printf.sprintf "serve: %s(%s): %s" fn arg (Unix.error_message err))));
    (try Unix.close ctl_r with Unix.Unix_error _ -> ());
    (try Unix.close ctl_w with Unix.Unix_error _ -> ());
    print_endline "portend serve: drained";
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived classification daemon: newline-delimited JSON jobs over a Unix or \
          TCP socket, verdicts streamed back per race, solver memos / static summaries / the \
          verdict cache kept hot across requests.  See the README for the protocol.")
    Term.(
      const serve $ socket_arg $ port_arg $ host_arg $ jobs_arg $ queue_arg $ idle_arg
      $ max_request_arg $ batch_arg $ cache_arg $ no_cache_arg $ cache_dir_arg $ trace_arg)

(* --- litmus --- *)

let litmus_cmd =
  let module Litmus = Portend_litmus in
  let budget_arg =
    Arg.(
      value & opt int 300
      & info [ "budget" ] ~docv:"N"
          ~doc:"Canonical programs to enumerate and classify (enumeration order is fixed, so a \
                budget always covers the same prefix of the shape space).")
  in
  let threads_arg =
    Arg.(
      value & opt int Litmus.Enum.default_limits.Litmus.Enum.max_threads
      & info [ "threads" ] ~docv:"K" ~doc:"Maximum worker threads per program (2-3).")
  in
  let ops_arg =
    Arg.(
      value & opt int Litmus.Enum.default_limits.Litmus.Enum.max_ops
      & info [ "ops" ] ~docv:"K" ~doc:"Maximum ops per thread.")
  in
  let vars_arg =
    Arg.(
      value & opt int Litmus.Enum.default_limits.Litmus.Enum.n_vars
      & info [ "vars" ] ~docv:"K" ~doc:"Shared variables the op alphabet ranges over (1-2).")
  in
  let max_total_arg =
    Arg.(
      value & opt int Litmus.Enum.default_limits.Litmus.Enum.max_total
      & info [ "max-total" ] ~docv:"K" ~doc:"Maximum total ops across all threads.")
  in
  let jobs_alt_arg =
    Arg.(
      value & opt int 2
      & info [ "jobs" ; "j" ] ~docv:"N"
          ~doc:"Worker-domain count for the jobs=N matrix point (compared bit-identical \
                against jobs=1).")
  in
  let serve_stride_arg =
    Arg.(
      value & opt int 16
      & info [ "serve-stride" ] ~docv:"N"
          ~doc:"Check the serve matrix point on every Nth program (0 disables the in-process \
                daemon entirely).")
  in
  let cache_stride_arg =
    Arg.(
      value & opt int 64
      & info [ "cache-stride" ] ~docv:"N"
          ~doc:"Check the cache cold/warm matrix points on every Nth program (0 disables).")
  in
  let include_stuck_arg =
    Arg.(
      value & flag
      & info [ "include-stuck" ]
          ~doc:"Also enumerate shapes whose synchronization is guaranteed to deadlock (the \
                pipeline must still classify their recordings deterministically).")
  in
  let no_baselines_arg =
    Arg.(
      value & flag
      & info [ "no-baselines" ]
          ~doc:"Skip the baseline-classifier comparison histogram (and its static-coverage \
                contract check).")
  in
  let promote_arg =
    Arg.(
      value & opt (some string) None
      & info [ "promote" ] ~docv:"DIR"
          ~doc:"Write every minimized disagreement as a named .rl regression file into \
                $(docv), ready to be checked in as a workload.")
  in
  let litmus budget threads ops vars max_total seed jobs_alt serve_stride cache_stride
      include_stuck no_baselines promote_dir =
    if threads < 2 || threads > 3 then or_die (Error "litmus: --threads must be 2 or 3");
    if vars < 1 || vars > 2 then or_die (Error "litmus: --vars must be 1 or 2");
    if ops < 1 then or_die (Error "litmus: --ops must be at least 1");
    let limits =
      { Litmus.Enum.max_threads = threads;
        max_ops = ops;
        n_vars = vars;
        max_total;
        include_stuck
      }
    in
    let opts =
      { Litmus.Runner.budget;
        limits;
        seed;
        jobs_alt;
        serve_stride;
        cache_stride;
        promote_dir;
        check_baselines = not no_baselines;
        progress =
          (if Unix.isatty Unix.stderr then
             Some (fun n -> if n mod 100 = 0 then Printf.eprintf "\r%d programs...%!" n)
           else None)
      }
    in
    let report = Litmus.Runner.run ~opts () in
    if Unix.isatty Unix.stderr then Printf.eprintf "\r%!";
    Fmt.pr "%a@?" Litmus.Runner.pp_report report;
    if report.Litmus.Runner.disagreements = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:
         "Enumerate small concurrent litmus programs and differential-test the whole \
          classification pipeline on each: every mode of the matrix (reduction off, static \
          prefilter, jobs=N, cache cold/warm, serve) must produce bit-identical verdicts.  \
          Disagreements are delta-debugged to minimal reproducers and exit nonzero.")
    Term.(
      const litmus $ budget_arg $ threads_arg $ ops_arg $ vars_arg $ max_total_arg $ seed_arg
      $ jobs_alt_arg $ serve_stride_arg $ cache_stride_arg $ include_stuck_arg
      $ no_baselines_arg $ promote_arg)

(* --- dump --- *)

let dump_cmd =
  let dump file =
    let prog = or_die (load file) in
    Fmt.pr "%a@." Portend_lang.Bytecode.pp prog;
    0
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Pretty-print the compiled bytecode of a program.")
    Term.(const dump $ file_arg)

let () =
  let doc = "data race detection and consequence-based classification (Portend, ASPLOS'12)" in
  let info = Cmd.info "portend" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; detect_cmd; classify_cmd; profile_cmd; lint_cmd; weakmem_cmd; suite_cmd;
            serve_cmd; litmus_cmd; dump_cmd ]))
