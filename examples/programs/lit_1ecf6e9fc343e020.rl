program lit_1ecf6e9fc343e020

global v0 = 0
sem h = 0

fn w1() {
  v0 = 1;
  sem_post h;
}

fn w2() {
  sem_wait h;
  output v0;
}

fn main() {
  var t1 = spawn w1();
  var t2 = spawn w2();
  join t1;
  join t2;
  output v0;
}
