program lit_2870c4d41b63eff1

global v0 = 0

fn w1() {
  v0 = (v0 + 1);
}

fn w2() {
  v0 = (v0 + 1);
}

fn main() {
  var t1 = spawn w1();
  var t2 = spawn w2();
  join t1;
  join t2;
  output v0;
}
