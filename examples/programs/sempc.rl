program sempc

// Semaphore handoff: `items` (initially 0) carries the post -> wait edge
// that orders the slot accesses; `guard` (initially 1) is a binary
// semaphore used as a lock -- its wait/post bracket is provable, so the
// static analysis gives both `nops` updates the pseudo-lock "sem:guard"
// and prunes the pair.  Both threads stamp the same value into `seen` --
// the one real, benign race.  Deadlock-free in every schedule.

global slot = 0
global nops = 0
global seen = 0
sem items = 0
sem guard = 1

fn producer() {
  slot = 42;
  sem_post items;
  sem_wait guard;
  nops = nops + 1;               // protected by the guard bracket
  sem_post guard;
  seen = 1;                      // racy, but both writers store 1
}

fn consumer() {
  sem_wait items;
  var v = slot;                  // ordered after the producer's write
  sem_wait guard;
  nops = nops + 1;               // protected by the guard bracket
  sem_post guard;
  seen = 1;                      // racy, but both writers store 1
  output v;
}

fn main() {
  var tp = spawn producer();
  var tc = spawn consumer();
  join tp;
  join tc;
  output slot;
  output nops;
  output seen;
}
