program atomic_block

// The counter update is protected by an atomic region, so the two workers
// cannot race on it.  But taking a mutex inside the region is hazardous:
// if the lock were ever held by a preempted thread, the owner of the
// region would block with every other thread frozen.  `portend lint`
// reports blocking-in-atomic.

global counter = 0
mutex m

fn bump() {
  atomic {
    lock m;                      // may block while the region is held
    counter = counter + 1;
    unlock m;
  }
}

fn main() {
  var t1 = spawn bump();
  var t2 = spawn bump();
  join t1;
  join t2;
  output counter;
}
