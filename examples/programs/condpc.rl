program condpc

// Condvar handoff: the producer fills the slot and signals; the consumer
// parks on the condvar before reading.  The slot accesses are ordered by
// the signal -> wakeup edge (and the sync-aware static analysis proves it:
// the read is behind the wait on every path, the write dominates the only
// signal).  Both threads stamp the same value into `seen` -- the one real,
// benign race.  The unconditional wait carries the classic lost-signal
// hazard: if the producer signals before the consumer parks, the consumer
// waits forever.

global slot = 0
global seen = 0
mutex m
cond c

fn consumer() {
  lock m;
  wait c, m;
  unlock m;
  var v = slot;                  // ordered after the producer's write
  seen = 1;                      // racy, but both writers store 1
  output v;
}

fn producer() {
  slot = 42;                     // dominates the signal below
  lock m;
  signal c;
  unlock m;
  seen = 1;                      // racy, but both writers store 1
}

fn main() {
  var tc = spawn consumer();
  var tp = spawn producer();
  join tc;
  join tp;
  output slot;
  output seen;
}
