program turnstile

// Two turnstiles admit visitors: each gate's own count is updated under
// the lock, but the park-wide total is bumped without it.

global total = 0
global gate_a = 0
global gate_b = 0
mutex m

fn turner_a() {
  var i = 0;
  while (i < 3) {
    lock m;
    gate_a = gate_a + 1;
    unlock m;
    total = total + 1;           // racy statistics update
    i = i + 1;
  }
}

fn turner_b() {
  var i = 0;
  while (i < 2) {
    lock m;
    gate_b = gate_b + 1;
    unlock m;
    total = total + 1;           // racy statistics update
    i = i + 1;
  }
}

fn main() {
  var a = spawn turner_a();
  var b = spawn turner_b();
  join a;
  join b;
  output gate_a;
  output gate_b;
  output total;                  // may read a lost update
}
