program lost_signal

// The worker signals a condvar nobody ever waits on: the signal is
// discarded.  `portend lint` proves it (no wait site on the condvar may
// happen in parallel with the signal) and reports lost-signal.

global done = 0
mutex m
cond c

fn late_signaller() {
  lock m;
  done = 1;
  signal c;                      // no waiter exists anywhere
  unlock m;
}

fn main() {
  var t = spawn late_signaller();
  join t;
  output done;
}
