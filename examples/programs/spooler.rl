program spooler

// A print spooler: submitters enqueue jobs under the lock, but the job
// counter shown on the console is read without it.

global jobs_done = 0
global queue_len = 0
array queue[8] = 0
mutex q

fn submitter(k) {
  lock q;
  var slot = queue_len;
  if (slot < 8) {
    queue[slot] = k;
    queue_len = slot + 1;
  }
  unlock q;
  jobs_done = jobs_done + 1;     // racy statistics update
}

fn console() {
  output jobs_done;              // racy read: printed total depends on timing
}

fn main() {
  var a = spawn submitter(3);
  var b = spawn submitter(4);
  var c = spawn console();
  join a;
  join b;
  join c;
}
