program sem_leak

// `grab` takes the semaphore token but returns without posting on the
// early-exit path: the token leaks and the next sem_wait blocks forever.
// `portend lint` reports sem-unmatched on the leaking return.

global taken = 0
sem pool = 1

fn grab(flag) {
  sem_wait pool;
  taken = taken + 1;
  if (flag == 0) {
    return;                      // leak: no sem_post on this path
  }
  sem_post pool;
}

fn main() {
  grab(1);                       // balanced bracket: wait, post
  grab(0);                       // takes the token and leaks it
  output taken;
}
