program barrier_mismatch

// The barrier expects three parties but only the two workers ever arrive:
// both block forever and main's joins deadlock.  `portend lint` counts the
// arriving threads statically and reports barrier-mismatch.

global a = 0
global b = 0
barrier phase = 3

fn worker_a() {
  a = 1;
  barrier_wait phase;
}

fn worker_b() {
  b = 1;
  barrier_wait phase;
}

fn main() {
  var t1 = spawn worker_a();
  var t2 = spawn worker_b();
  join t1;
  join t2;
  output a + b;
}
